package sim

import "strconv"

// reasonKind discriminates the lazy block-reason formats.
type reasonKind uint8

const (
	reasonStatic  reasonKind = iota // str verbatim
	reasonCompute                   // "compute %.6fs on %s"   (f, str)
	reasonSleep                     // "sleep %.6fs"           (f)
	reasonWait                      // "rank%d wait %s peer=%d tag=%d bytes=%d"
)

// Reason describes what a virtual process is blocked on without
// materializing the description. The engine stores it by value on the
// Proc, so the steady-state block path performs no formatting and no
// allocation; the text is rendered only when a DeadlockError is actually
// built or a telemetry probe is attached (probes receive reasons as
// strings). Construct one with StaticReason or WaitReason; Proc.Compute
// and Proc.Sleep build theirs internally.
type Reason struct {
	kind reasonKind
	str  string // static text, CPU group name, or MPI op name
	f    float64
	a, b int // rank, peer
	tag  int
	n    int64 // bytes
}

// StaticReason wraps a precomputed description. Use it when the text is
// a constant (or already exists); it costs nothing beyond the value copy.
func StaticReason(s string) Reason { return Reason{kind: reasonStatic, str: s} }

// WaitReason describes a blocking wait on a message-passing request,
// rendered as "rank<r> wait <op> peer=<p> tag=<t> bytes=<b>". op should
// be a preexisting string (an operation name constant), so building the
// Reason allocates nothing.
func WaitReason(rank int, op string, peer, tag int, bytes int64) Reason {
	return Reason{kind: reasonWait, str: op, a: rank, b: peer, tag: tag, n: bytes}
}

// computeReason is Proc.Compute's block reason.
func computeReason(work float64, cpu string) Reason {
	return Reason{kind: reasonCompute, f: work, str: cpu}
}

// sleepReason is Proc.Sleep's block reason.
func sleepReason(d float64) Reason { return Reason{kind: reasonSleep, f: d} }

// String renders the reason. The output is byte-identical to the eager
// fmt.Sprintf formats used before reasons became lazy (%.6f matches
// strconv's 'f' with precision 6), which the Perfetto goldens pin.
func (r Reason) String() string {
	switch r.kind {
	case reasonCompute:
		b := make([]byte, 0, 48)
		b = append(b, "compute "...)
		b = strconv.AppendFloat(b, r.f, 'f', 6, 64)
		b = append(b, "s on "...)
		b = append(b, r.str...)
		return string(b)
	case reasonSleep:
		b := make([]byte, 0, 24)
		b = append(b, "sleep "...)
		b = strconv.AppendFloat(b, r.f, 'f', 6, 64)
		b = append(b, 's')
		return string(b)
	case reasonWait:
		b := make([]byte, 0, 64)
		b = append(b, "rank"...)
		b = strconv.AppendInt(b, int64(r.a), 10)
		b = append(b, " wait "...)
		b = append(b, r.str...)
		b = append(b, " peer="...)
		b = strconv.AppendInt(b, int64(r.b), 10)
		b = append(b, " tag="...)
		b = strconv.AppendInt(b, int64(r.tag), 10)
		b = append(b, " bytes="...)
		b = strconv.AppendInt(b, r.n, 10)
		return string(b)
	default:
		return r.str
	}
}
