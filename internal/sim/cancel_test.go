package sim

import (
	"context"
	"errors"
	"testing"
)

// TestRunAborted: canceling the attached context mid-run stops the
// engine with an error wrapping context.Canceled, and every virtual
// process is unwound (Run returns with no goroutine left parked).
func TestRunAborted(t *testing.T) {
	e := New()
	cpu := e.NewCPU("node0", 1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	steps := 0
	e.Spawn("worker", false, func(p *Proc) {
		// A long sequence of tiny compute slices: each one is a
		// scheduler iteration, so the abort checkpoint is exercised
		// many times over.
		for i := 0; i < 1_000_000; i++ {
			p.Compute(cpu, 1e-6)
			steps++
			if steps == 1000 {
				cancel()
			}
		}
	})
	err := e.Run()
	if err == nil {
		t.Fatal("Run returned nil after context cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want errors.Is(context.Canceled)", err)
	}
	if steps >= 1_000_000 {
		t.Fatal("simulation ran to completion despite cancellation")
	}
	// The checkpoint is rate-limited; the engine must still stop within
	// a few intervals of the cancel.
	if steps > 1000+4*abortCheckInterval {
		t.Fatalf("engine processed %d steps after cancellation", steps-1000)
	}
}

// TestRunDeadline: an already-expired deadline aborts the run almost
// immediately with context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	e := New()
	cpu := e.NewCPU("node0", 1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // done before Run even starts
	_ = ctx.Err()
	e.SetContext(ctx)
	e.Spawn("worker", false, func(p *Proc) {
		for i := 0; i < 1_000_000; i++ {
			p.Compute(cpu, 1e-6)
		}
	})
	if err := e.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
}

// TestRunBackgroundContext: SetContext with a Background context keeps
// the run identical to an unattached one — same result, no error.
func TestRunBackgroundContext(t *testing.T) {
	run := func(attach bool) (float64, error) {
		e := New()
		cpu := e.NewCPU("node0", 1, 1)
		if attach {
			e.SetContext(context.Background())
		}
		e.Spawn("worker", false, func(p *Proc) {
			for i := 0; i < 500; i++ {
				p.Compute(cpu, 1e-3)
			}
		})
		err := e.Run()
		return e.Now(), err
	}
	t0, err0 := run(false)
	t1, err1 := run(true)
	if err0 != nil || err1 != nil {
		t.Fatalf("errors: %v / %v", err0, err1)
	}
	if t0 != t1 {
		t.Fatalf("Background context changed the result: %v != %v", t0, t1)
	}
}
