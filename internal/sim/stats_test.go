package sim

import (
	"errors"
	"fmt"
	"testing"

	"perfskel/internal/telemetry"
)

func TestStatsPerCPUBusyTime(t *testing.T) {
	// Two CPU groups: cpu0 computes 2s on one proc, cpu1 computes 3s
	// split over two procs that never oversubscribe its two processors.
	e := New()
	cpu0 := e.NewCPU("cpu0", 2, 1.0)
	cpu1 := e.NewCPU("cpu1", 2, 1.0)
	e.Spawn("a", false, func(p *Proc) { p.Compute(cpu0, 2.0) })
	e.Spawn("b", false, func(p *Proc) { p.Compute(cpu1, 1.0) })
	e.Spawn("c", false, func(p *Proc) { p.Compute(cpu1, 2.0) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if len(s.CPUBusy) != 2 {
		t.Fatalf("CPUBusy has %d entries, want 2", len(s.CPUBusy))
	}
	if s.CPUBusy[0].Name != "cpu0" || s.CPUBusy[1].Name != "cpu1" {
		t.Fatalf("CPUBusy order = %q, %q; want creation order cpu0, cpu1", s.CPUBusy[0].Name, s.CPUBusy[1].Name)
	}
	// Busy time counts wall intervals with at least one active task.
	approx(t, s.CPUBusy[0].Busy, 2.0, tol, "cpu0 busy")
	approx(t, s.CPUBusy[1].Busy, 2.0, tol, "cpu1 busy")
}

func TestStatsPerLinkBytes(t *testing.T) {
	// One flow of 1000 bytes over up0+down1, and 500 bytes over up0 only:
	// up0 carries both, down1 only the first.
	e := New()
	up0 := e.NewResource("up0", 100.0)
	down1 := e.NewResource("down1", 100.0)
	e.Spawn("driver", false, func(p *Proc) {
		done := e.NewEvent()
		e.StartFlow([]*Resource{up0, down1}, 1000, func() {})
		e.StartFlow([]*Resource{up0}, 500, func() { done.Fire() })
		p.WaitEvent(done, "flow")
		p.Sleep(20) // let the larger flow drain too
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if len(s.LinkBytes) != 2 {
		t.Fatalf("LinkBytes has %d entries, want 2", len(s.LinkBytes))
	}
	if s.LinkBytes[0].Name != "up0" || s.LinkBytes[1].Name != "down1" {
		t.Fatalf("LinkBytes order = %q, %q; want creation order up0, down1", s.LinkBytes[0].Name, s.LinkBytes[1].Name)
	}
	approx(t, s.LinkBytes[0].Bytes, 1500, 1e-6, "up0 bytes carried")
	approx(t, s.LinkBytes[1].Bytes, 1000, 1e-6, "down1 bytes carried")
}

func TestDeadlockBlockedListDeterministicOrder(t *testing.T) {
	// Regression: DeadlockError.Blocked must list blocked procs in
	// process-id order with their block reasons, independent of wake-up
	// history. Spawn several procs that block in scrambled time order.
	e := New()
	for i := 0; i < 5; i++ {
		i := i
		ev := e.NewEvent()
		e.Spawn(fmt.Sprintf("p%d", i), false, func(p *Proc) {
			// Stagger so later-id procs block earlier in virtual time.
			p.Sleep(float64(5-i) * 0.1)
			p.WaitEvent(ev, fmt.Sprintf("reason%d", i))
		})
	}
	err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("Run returned %v, want *DeadlockError", err)
	}
	if len(dl.Blocked) != 5 {
		t.Fatalf("Blocked has %d entries, want 5", len(dl.Blocked))
	}
	for i, b := range dl.Blocked {
		want := fmt.Sprintf("p%d: reason%d", i, i)
		if b != want {
			t.Errorf("Blocked[%d] = %q, want %q", i, b, want)
		}
	}
}

func TestEngineProbeSeesLifecycle(t *testing.T) {
	// The collector observes spawn, block/wake, task lifecycle and
	// utilisation changes via the probe.
	col := telemetry.NewCollector()
	e := New()
	e.SetProbe(col)
	cpu := e.NewCPU("cpu0", 1, 1.0)
	link := e.NewResource("up0", 100.0)
	e.Spawn("worker", false, func(p *Proc) {
		p.Compute(cpu, 1.0)
		done := e.NewEvent()
		e.StartFlow([]*Resource{link}, 200, func() { done.Fire() })
		p.WaitEvent(done, "flow wait")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	m := col.Metrics
	if got := m.Counter("sim.procs").Value; got != 1 {
		t.Errorf("sim.procs = %v, want 1", got)
	}
	if got := m.Counter("sim.tasks." + telemetry.TaskCompute).Value; got != 1 {
		t.Errorf("compute tasks = %v, want 1", got)
	}
	if got := m.Counter("sim.tasks." + telemetry.TaskFlow).Value; got != 1 {
		t.Errorf("flow tasks = %v, want 1", got)
	}
	if got := m.Histogram("sim.block_time").Count; got == 0 {
		t.Error("no block intervals observed")
	}
	if got := m.Gauge("sim.link_rate.up0").Updated; got <= 0 {
		t.Error("link rate gauge never updated")
	}
	approx(t, col.Duration(), e.Now(), tol, "collector last time")
}
