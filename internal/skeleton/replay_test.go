package skeleton

import (
	"math"
	"math/rand"
	"testing"

	"perfskel/internal/cluster"
	"perfskel/internal/mpi"
	"perfskel/internal/nas"
	"perfskel/internal/trace"
)

// TestUnscaledSkeletonReplaysApplication is the cost-model round trip: a
// K=1 skeleton is a replay of the compressed trace, so its execution time
// must reproduce the application's within a couple of percent — on the
// dedicated testbed and under every sharing scenario. This validates that
// trace, signature and executor share one consistent cost model.
func TestUnscaledSkeletonReplaysApplication(t *testing.T) {
	for _, name := range []string{"MG", "IS", "CG"} {
		app, err := nas.App(name, nas.ClassS)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.Build(cluster.Testbed(4), cluster.Dedicated())
		rec := trace.NewRecorder(4)
		appDed, err := mpi.Run(cl, 4, mpi.Config{}, rec, app)
		if err != nil {
			t.Fatal(err)
		}
		prog, _, err := BuildFromTrace(rec.Finish(appDed), 1, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		scenarios := append([]cluster.Scenario{cluster.Dedicated()}, cluster.PaperScenarios(4)...)
		for _, sc := range scenarios {
			clA := cluster.Build(cluster.Testbed(4), sc)
			appT, err := mpi.Run(clA, 4, mpi.Config{}, nil, app)
			if err != nil {
				t.Fatal(err)
			}
			clS := cluster.Build(cluster.Testbed(4), sc)
			skelT, err := Run(prog, clS, mpi.Config{}, nil)
			if err != nil {
				t.Fatalf("%s %s: %v", name, sc.Name, err)
			}
			if rel := math.Abs(skelT-appT) / appT; rel > 0.05 {
				t.Errorf("%s %s: K=1 replay %v vs app %v (%.1f%% off)",
					name, sc.Name, skelT, appT, 100*rel)
			}
		}
	}
}

// TestBuildFromTraceRobustToAdversarialJitter: applications whose compute
// durations vary strongly and differently per rank are exactly what makes
// naive clustering split event classes inconsistently across ranks. For
// any such program, BuildFromTrace must either produce a skeleton that
// runs to completion or refuse loudly — never emit one that deadlocks.
func TestBuildFromTraceRobustToAdversarialJitter(t *testing.T) {
	const ranks = 4
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		iters := 15 + rng.Intn(30)
		base := 0.002 + rng.Float64()*0.01
		spread := 0.3 + rng.Float64()*0.5 // up to +/-80% variation
		msg := int64(1 << (8 + rng.Intn(12)))
		perRank := make([][]float64, ranks)
		for r := range perRank {
			perRank[r] = make([]float64, iters)
			for i := range perRank[r] {
				perRank[r][i] = base * (1 + spread*(2*rng.Float64()-1))
			}
		}
		app := func(c *mpi.Comm) {
			n, r := c.Size(), c.Rank()
			for i := 0; i < iters; i++ {
				c.Compute(perRank[r][i])
				c.Sendrecv((r+1)%n, msg, (r-1+n)%n, 1)
				c.Allreduce(8)
			}
		}
		cl := cluster.Build(cluster.Testbed(ranks), cluster.Dedicated())
		rec := trace.NewRecorder(ranks)
		dur, err := mpi.Run(cl, ranks, mpi.Config{}, rec, app)
		if err != nil {
			t.Fatal(err)
		}
		k := 2 + rng.Intn(8)
		prog, _, err := BuildFromTrace(rec.Finish(dur), k, Options{})
		if err != nil {
			// A loud refusal is acceptable; silence followed by deadlock
			// is not.
			continue
		}
		clS := cluster.Build(cluster.Testbed(ranks), cluster.Dedicated())
		clS.Engine.MaxVirtualTime = dur*10 + 10
		if _, err := Run(prog, clS, mpi.Config{}, nil); err != nil {
			t.Errorf("seed %d (K=%d): consistent-by-construction skeleton failed: %v", seed, k, err)
		}
	}
}
