package skeleton

import (
	"math"
	"strings"
	"testing"

	"perfskel/internal/cluster"
	"perfskel/internal/mpi"
	"perfskel/internal/signature"
	"perfskel/internal/trace"
)

var freeCfg = mpi.Config{CallOverhead: -1, ReduceCostPerByte: -1, SelfLatency: -1}

// traceAndSign runs app on a dedicated testbed and compresses the trace.
func traceAndSign(t *testing.T, nranks int, q float64, app mpi.App) *signature.Signature {
	t.Helper()
	cl := cluster.Build(cluster.Testbed(nranks), cluster.Dedicated())
	rec := trace.NewRecorder(nranks)
	dur, err := mpi.Run(cl, nranks, freeCfg, rec, app)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := signature.Build(rec.Finish(dur), signature.Options{TargetRatio: q})
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// iterApp is a 100-iteration SPMD program: compute + exchange + allreduce.
func iterApp(c *mpi.Comm) {
	peer := 1 - c.Rank()
	for i := 0; i < 100; i++ {
		c.Compute(0.02)
		c.Sendrecv(peer, 50000, peer, 1)
		c.Allreduce(8)
	}
}

func TestLoopCountDividedByK(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	var found *LoopNode
	for _, n := range p.PerRank[0] {
		if l, ok := n.(LoopNode); ok && l.Count == 10 {
			found = &l
		}
	}
	if found == nil {
		t.Fatalf("no loop with count 100/10=10 in skeleton: %s", p)
	}
}

func TestExpectedTimeScalesByK(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	for _, k := range []int{2, 5, 10, 50} {
		p, err := Build(sig, k)
		if err != nil {
			t.Fatal(err)
		}
		want := sig.AppTime / float64(k)
		got := p.ExpectedTime(0)
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("K=%d: expected time %v, want ~%v", k, got, want)
		}
	}
}

func TestRemainderUnrolledAndScaled(t *testing.T) {
	// A 105-iteration loop with K=10 becomes a 10-iteration loop plus
	// remainder content representing 0.5 extra iterations.
	a := &signature.Cluster{ID: 0, Op: mpi.OpCompute, Peer: mpi.None, Peer2: mpi.None, Duration: 1.0, Count: 105}
	loop := signature.NewLoop(105, []signature.Node{signature.Leaf{C: a}})
	sig := &signature.Signature{
		NRanks: 1, AppTime: 105,
		PerRank:  [][]signature.Node{{loop}},
		Clusters: []*signature.Cluster{a},
	}
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.5 // 10 full iterations + 5 unrolled scaled by 1/10
	if got := p.ExpectedTime(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("expected time = %v, want %v", got, want)
	}
	if l, ok := p.PerRank[0][0].(LoopNode); !ok || l.Count != 10 {
		t.Errorf("first node = %v, want loop x10", p.PerRank[0][0])
	}
}

func TestGroupOfKIdenticalOpsCollapse(t *testing.T) {
	// 20 identical unreduced sends with K=5 collapse to 4 unscaled
	// occurrences (each standing for its group of 5).
	s := &signature.Cluster{ID: 0, Op: mpi.OpSend, Peer: 1, Bytes: 1000, Duration: 0.001, Count: 20}
	var seq []signature.Node
	for i := 0; i < 20; i++ {
		seq = append(seq, signature.Leaf{C: s})
	}
	// Prevent loop folding from having happened: build signature directly.
	sig := &signature.Signature{NRanks: 1, AppTime: 0.02, PerRank: [][]signature.Node{seq},
		Clusters: []*signature.Cluster{s}}
	p, err := Build(sig, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Ops(0); got != 4 {
		t.Errorf("ops = %d, want 4", got)
	}
	for _, n := range p.PerRank[0] {
		if o, ok := n.(OpNode); ok && o.Op.Bytes != 1000 {
			t.Errorf("grouped op scaled: %v, want unscaled 1000 bytes", o)
		}
	}
}

func TestLeftoverOpsScaledByK(t *testing.T) {
	// 3 identical ops with K=10: all leftovers, bytes scaled to 1/10.
	s := &signature.Cluster{ID: 0, Op: mpi.OpSend, Peer: 1, Bytes: 1000, Duration: 0.001, Count: 3}
	seq := []signature.Node{signature.Leaf{C: s}, signature.Leaf{C: s}, signature.Leaf{C: s}}
	sig := &signature.Signature{NRanks: 1, AppTime: 0.003, PerRank: [][]signature.Node{seq},
		Clusters: []*signature.Cluster{s}}
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Ops(0); got != 3 {
		t.Fatalf("ops = %d, want 3 leftovers", got)
	}
	for _, n := range p.PerRank[0] {
		if o := n.(OpNode); o.Op.Bytes != 100 {
			t.Errorf("leftover bytes = %d, want 100", o.Op.Bytes)
		}
	}
}

func TestScaleOpNeverZeroesBytes(t *testing.T) {
	op := scaleOp(Op{Kind: mpi.OpSend, Bytes: 3}, 10)
	if op.Bytes != 1 {
		t.Errorf("bytes = %d, want floor of 1", op.Bytes)
	}
}

func TestBuildForTimeDerivesK(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	target := sig.AppTime / 7
	p, err := BuildForTime(sig, target)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 7 {
		t.Errorf("K = %d, want 7", p.K)
	}
	if _, err := BuildForTime(sig, -1); err == nil {
		t.Error("want error for negative target")
	}
	if _, err := Build(sig, 0); err == nil {
		t.Error("want error for K=0")
	}
}

func TestMinGoodTimeSimpleLoop(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	// Dominant loop has 100 iterations: min good time = AppTime/100.
	want := sig.AppTime / 100
	got := MinGoodTime(sig, DefaultCoverage)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("MinGoodTime = %v, want ~%v", got, want)
	}
}

func TestMinGoodTimeNestedLoop(t *testing.T) {
	// Outer 10 x inner 20 iterations, inner body dominates: P = 200.
	sig := traceAndSign(t, 2, 5, func(c *mpi.Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < 10; i++ {
			for j := 0; j < 20; j++ {
				c.Compute(0.01)
				c.Sendrecv(peer, 10000, peer, 1)
			}
			c.Allreduce(8)
		}
	})
	want := sig.AppTime / 200
	got := MinGoodTime(sig, DefaultCoverage)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("MinGoodTime = %v, want ~%v (nested P=200)", got, want)
	}
}

func TestMinGoodTimeNoLoops(t *testing.T) {
	// No cyclic structure: the bound is the full app time.
	c1 := &signature.Cluster{ID: 0, Op: mpi.OpCompute, Duration: 1, Count: 1}
	c2 := &signature.Cluster{ID: 1, Op: mpi.OpBarrier, Duration: 0.1, Count: 1}
	sig := &signature.Signature{NRanks: 1, AppTime: 1.1,
		PerRank:  [][]signature.Node{{signature.Leaf{C: c1}, signature.Leaf{C: c2}}},
		Clusters: []*signature.Cluster{c1, c2}}
	if got := MinGoodTime(sig, DefaultCoverage); got != 1.1 {
		t.Errorf("MinGoodTime = %v, want full app time", got)
	}
}

func TestGoodFlagSetOnBuild(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	big, err := Build(sig, 10) // keeps 10 iterations: good
	if err != nil {
		t.Fatal(err)
	}
	if !big.Good {
		t.Errorf("K=10 skeleton flagged not good: min %v target %v", big.MinGoodTime, big.TargetTime)
	}
	tiny, err := Build(sig, 1000) // cannot keep one iteration
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Good {
		t.Errorf("K=1000 skeleton flagged good: min %v target %v", tiny.MinGoodTime, tiny.TargetTime)
	}
}

func TestSkeletonRunsAtTargetTime(t *testing.T) {
	// The headline property: the skeleton's dedicated execution time is
	// about AppTime/K.
	sig := traceAndSign(t, 2, 5, iterApp)
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
	dur, err := Run(p, cl, freeCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := sig.AppTime / 10
	if math.Abs(dur-want)/want > 0.1 {
		t.Errorf("skeleton ran %v, want ~%v", dur, want)
	}
}

func TestSkeletonTracksApplicationSlowdown(t *testing.T) {
	// Under CPU contention the skeleton must slow down by the same factor
	// as the application — the defining property of a performance
	// skeleton.
	app := iterApp
	sig := traceAndSign(t, 2, 5, app)
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []cluster.Scenario{cluster.CPUAllNodes(2), cluster.CPUOneNode()} {
		clApp := cluster.Build(cluster.Testbed(2), sc)
		appDur, err := mpi.Run(clApp, 2, freeCfg, nil, app)
		if err != nil {
			t.Fatal(err)
		}
		clSkel := cluster.Build(cluster.Testbed(2), sc)
		skelDur, err := Run(p, clSkel, freeCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		clSkelDed := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
		skelDed, err := Run(p, clSkelDed, freeCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		appSlow := appDur / sig.AppTime
		skelSlow := skelDur / skelDed
		if math.Abs(appSlow-skelSlow)/appSlow > 0.1 {
			t.Errorf("%s: app slowdown %.3f, skeleton slowdown %.3f", sc.Name, appSlow, skelSlow)
		}
	}
}

func TestExecutorHandlesAllOps(t *testing.T) {
	// A handcrafted program touching every op kind runs to completion.
	mk := func(rank int) []Node {
		peer := 1 - rank
		return []Node{
			OpNode{Op: Op{Kind: mpi.OpCompute, Work: 0.001}},
			OpNode{Op: Op{Kind: mpi.OpIsend, Peer: peer, Tag: 1, Bytes: 100}},
			OpNode{Op: Op{Kind: mpi.OpIrecv, Peer: peer, Tag: 1}},
			OpNode{Op: Op{Kind: mpi.OpWait, Sub: mpi.OpIrecv}},
			OpNode{Op: Op{Kind: mpi.OpWait, Sub: mpi.OpIsend}},
			OpNode{Op: Op{Kind: mpi.OpSendrecv, Peer: peer, Peer2: peer, Tag: 2, Bytes: 200, Byte2: 200}},
			OpNode{Op: Op{Kind: mpi.OpBarrier}},
			OpNode{Op: Op{Kind: mpi.OpBcast, Peer: 0, Bytes: 64}},
			OpNode{Op: Op{Kind: mpi.OpReduce, Peer: 0, Bytes: 64}},
			OpNode{Op: Op{Kind: mpi.OpAllreduce, Bytes: 8}},
			OpNode{Op: Op{Kind: mpi.OpAlltoall, Bytes: 1000}},
			OpNode{Op: Op{Kind: mpi.OpAllgather, Bytes: 500}},
			OpNode{Op: Op{Kind: mpi.OpGather, Peer: 0, Bytes: 100}},
			OpNode{Op: Op{Kind: mpi.OpScatter, Peer: 0, Bytes: 100}},
			LoopNode{Count: 3, Body: []Node{
				OpNode{Op: Op{Kind: mpi.OpCompute, Work: 0.0001}},
				OpNode{Op: Op{Kind: mpi.OpSend, Peer: peer, Tag: 3, Bytes: 10}},
				OpNode{Op: Op{Kind: mpi.OpRecv, Peer: peer, Tag: 3}},
			}},
			// An Isend left outstanding: drain must clean it up.
			OpNode{Op: Op{Kind: mpi.OpIrecv, Peer: peer, Tag: 4}},
			OpNode{Op: Op{Kind: mpi.OpIsend, Peer: peer, Tag: 4, Bytes: 10}},
		}
	}
	p := &Program{NRanks: 2, K: 1, PerRank: [][]Node{mk(0), mk(1)}}
	cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
	if _, err := Run(p, cl, freeCfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitWithNothingOutstandingIsNoop(t *testing.T) {
	p := &Program{NRanks: 1, K: 1, PerRank: [][]Node{{
		OpNode{Op: Op{Kind: mpi.OpWait, Sub: mpi.OpIrecv}},
		OpNode{Op: Op{Kind: mpi.OpWaitall}},
		OpNode{Op: Op{Kind: mpi.OpCompute, Work: 0.001}},
	}}}
	cl := cluster.Build(cluster.Testbed(1), cluster.Dedicated())
	if _, err := Run(p, cl, freeCfg, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProgramOpsAndString(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops(0) == 0 || p.Ops(1) == 0 {
		t.Error("empty op counts")
	}
	s := p.String()
	for _, want := range []string{"K=10", "rank 0:", "rank 1:"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q", want)
		}
	}
}

func TestMinGoodTimeCoverageParameter(t *testing.T) {
	// With an unsatisfiable coverage requirement nothing qualifies and the
	// bound falls back to the full application time.
	sig := traceAndSign(t, 2, 5, iterApp)
	loose := MinGoodTime(sig, 0.1)
	strict := MinGoodTime(sig, 1.5)
	if loose >= strict {
		t.Errorf("loose coverage bound %v not below strict %v", loose, strict)
	}
	if strict != sig.AppTime {
		t.Errorf("unreachable coverage bound = %v, want app time %v", strict, sig.AppTime)
	}
}

func TestBuildFromTraceMeetsTarget(t *testing.T) {
	cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
	rec := trace.NewRecorder(2)
	dur, err := mpi.Run(cl, 2, freeCfg, rec, iterApp)
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Finish(dur)
	prog, sig, err := BuildFromTrace(tr, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sig.TargetMet {
		t.Errorf("Q=5 not met: ratio %v", sig.Ratio)
	}
	if err := prog.Consistent(); err != nil {
		t.Errorf("built skeleton inconsistent: %v", err)
	}
	if _, _, err := BuildFromTrace(tr, 0, Options{}); err == nil {
		t.Error("want error for K=0")
	}
}

func TestConsistentDetectsMismatches(t *testing.T) {
	// Collective count mismatch.
	bad := &Program{NRanks: 2, K: 1, PerRank: [][]Node{
		{OpNode{Op: Op{Kind: mpi.OpAllreduce, Peer: mpi.None, Bytes: 8}}},
		{},
	}}
	if err := bad.Consistent(); err == nil {
		t.Error("collective count mismatch not detected")
	}
	// Collective order mismatch.
	bad2 := &Program{NRanks: 2, K: 1, PerRank: [][]Node{
		{OpNode{Op: Op{Kind: mpi.OpAllreduce, Peer: mpi.None}}, OpNode{Op: Op{Kind: mpi.OpBarrier, Peer: mpi.None}}},
		{OpNode{Op: Op{Kind: mpi.OpBarrier, Peer: mpi.None}}, OpNode{Op: Op{Kind: mpi.OpAllreduce, Peer: mpi.None}}},
	}}
	if err := bad2.Consistent(); err == nil {
		t.Error("collective order mismatch not detected")
	}
	// Unmatched p2p.
	bad3 := &Program{NRanks: 2, K: 1, PerRank: [][]Node{
		{OpNode{Op: Op{Kind: mpi.OpSend, Peer: 1, Tag: 1, Bytes: 8}}},
		{},
	}}
	if err := bad3.Consistent(); err == nil {
		t.Error("unmatched send not detected")
	}
	// A matched pair inside loops of equal multiplicity is consistent.
	good := &Program{NRanks: 2, K: 1, PerRank: [][]Node{
		{LoopNode{Count: 3, Body: []Node{OpNode{Op: Op{Kind: mpi.OpSend, Peer: 1, Tag: 1, Bytes: 8}}}}},
		{LoopNode{Count: 3, Body: []Node{OpNode{Op: Op{Kind: mpi.OpRecv, Peer: 0, Tag: 1}}}}},
	}}
	if err := good.Consistent(); err != nil {
		t.Errorf("consistent program rejected: %v", err)
	}
}
