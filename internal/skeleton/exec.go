package skeleton

import (
	"context"
	"fmt"

	"perfskel/internal/cluster"
	"perfskel/internal/mpi"
)

// Execute runs rank c.Rank()'s part of the skeleton program on the given
// communicator. Non-blocking requests are tracked in issue order; an
// OpWait waits on the oldest outstanding request of the recorded kind,
// which reproduces the application's computation/communication overlap
// structure.
func Execute(p *Program, c *mpi.Comm) {
	if c.Size() != p.NRanks {
		panic(fmt.Sprintf("skeleton: program built for %d ranks run on %d", p.NRanks, c.Size()))
	}
	x := &executor{c: c}
	x.walk(p.PerRank[c.Rank()], 0)
	// Drain any requests left outstanding by approximation artefacts so
	// the rank terminates cleanly.
	x.drain()
}

type executor struct {
	c           *mpi.Comm
	outstanding []*mpi.Request // issue order
}

// walk executes a sequence; iter is the enclosing loop's current
// iteration index, which compute operations with a duration distribution
// use to cycle through their quantiles.
func (x *executor) walk(seq []Node, iter int) {
	for _, nd := range seq {
		switch n := nd.(type) {
		case OpNode:
			x.perform(n.Op, iter)
		case LoopNode:
			for i := 0; i < n.Count; i++ {
				x.walk(n.Body, i)
			}
		}
	}
}

func (x *executor) perform(op Op, iter int) {
	c := x.c
	switch op.Kind {
	case mpi.OpCompute:
		work := op.Work
		if len(op.Dist) > 0 {
			// Offsetting by rank decorrelates the phases of different
			// ranks, reproducing the cross-rank spread of computation
			// durations that drives synchronisation waits in unbalanced
			// scenarios (section 4.4).
			work = op.Dist[(iter+c.Rank())%len(op.Dist)]
		}
		c.Compute(work)
	case mpi.OpSend:
		c.Send(op.Peer, op.Tag, op.Bytes)
	case mpi.OpRecv:
		c.Recv(op.Peer, op.Tag)
	case mpi.OpIsend:
		x.outstanding = append(x.outstanding, c.Isend(op.Peer, op.Tag, op.Bytes))
	case mpi.OpIrecv:
		x.outstanding = append(x.outstanding, c.Irecv(op.Peer, op.Tag))
	case mpi.OpWait:
		if r := x.pop(op.Sub); r != nil {
			c.Wait(r)
		}
	case mpi.OpWaitall:
		if len(x.outstanding) > 0 {
			c.Waitall(x.outstanding...)
			x.outstanding = nil
		}
	case mpi.OpSendrecv:
		c.Sendrecv(op.Peer, op.Bytes, op.Peer2, op.Tag)
	case mpi.OpBarrier:
		c.Barrier()
	case mpi.OpBcast:
		c.Bcast(op.Peer, op.Bytes)
	case mpi.OpReduce:
		c.Reduce(op.Peer, op.Bytes)
	case mpi.OpAllreduce:
		c.Allreduce(op.Bytes)
	case mpi.OpAlltoall:
		c.Alltoall(op.Bytes)
	case mpi.OpAlltoallv:
		// Replayed as a uniform exchange of the recorded mean size.
		sizes := make([]int64, c.Size())
		for i := range sizes {
			sizes[i] = op.Bytes
		}
		c.Alltoallv(sizes)
	case mpi.OpAllgather:
		c.Allgather(op.Bytes)
	case mpi.OpGather:
		c.Gather(op.Peer, op.Bytes)
	case mpi.OpScatter:
		c.Scatter(op.Peer, op.Bytes)
	default:
		panic(fmt.Sprintf("skeleton: unknown op %v", op.Kind))
	}
}

// pop removes and returns the oldest outstanding request of the given
// kind (OpIsend/OpIrecv); if kind is unset or absent it falls back to the
// oldest request of any kind, and returns nil when none are outstanding.
func (x *executor) pop(kind mpi.Op) *mpi.Request {
	for i, r := range x.outstanding {
		if kind == mpi.OpInvalid || r.Op() == kind {
			x.outstanding = append(x.outstanding[:i], x.outstanding[i+1:]...)
			return r
		}
	}
	if len(x.outstanding) > 0 {
		r := x.outstanding[0]
		x.outstanding = x.outstanding[1:]
		return r
	}
	return nil
}

func (x *executor) drain() {
	if len(x.outstanding) > 0 {
		x.c.Waitall(x.outstanding...)
		x.outstanding = nil
	}
}

// Run executes the whole skeleton program on a cluster and returns its
// parallel execution time, the quantity the prediction method multiplies
// by the measured scaling ratio.
func Run(p *Program, cl *cluster.Cluster, cfg mpi.Config, mon mpi.Monitor) (float64, error) {
	return RunContext(context.Background(), p, cl, cfg, mon)
}

// RunContext is Run with a cancellation context, checked by the
// simulation engine at event granularity (see mpi.RunContext).
func RunContext(ctx context.Context, p *Program, cl *cluster.Cluster, cfg mpi.Config, mon mpi.Monitor) (float64, error) {
	return mpi.RunContext(ctx, cl, p.NRanks, cfg, mon, func(c *mpi.Comm) { Execute(p, c) })
}
