// Package skeleton generates performance skeletons from execution
// signatures (paper section 3.3): the signature's loop structure is scaled
// down by a factor K — loop counts divided, remainders unrolled, groups of
// K identical unreduced operations collapsed, leftovers scaled by
// parameter adjustment — and the result is an executable synthetic program
// whose execution time is approximately 1/K of the application's in any
// resource-sharing scenario. The package also estimates the shortest
// "good" skeleton (section 3.4) and emits C/MPI and Go source code for the
// skeleton program.
package skeleton

import (
	"fmt"
	"strings"

	"perfskel/internal/mpi"
)

// Op is one synthetic skeleton operation. The struct is comparable;
// identical operations (as required by the group-of-K rule) are exactly
// the equal values.
type Op struct {
	Kind  mpi.Op
	Sub   mpi.Op // for waits: kind of request to wait for
	Peer  int
	Peer2 int
	Tag   int
	Bytes int64
	Byte2 int64
	Work  float64 // compute: dedicated-CPU seconds
	// Dist, when non-empty, holds duration quantiles a compute operation
	// cycles through per loop iteration instead of using Work (the
	// SpreadCompute option); the group-of-K identity ignores it.
	Dist []float64 `json:",omitempty"`
}

func (o Op) String() string {
	switch o.Kind {
	case mpi.OpCompute:
		return fmt.Sprintf("compute(%.6fs)", o.Work)
	case mpi.OpSendrecv:
		return fmt.Sprintf("%v(dst=%d,src=%d,bytes=%d)", o.Kind, o.Peer, o.Peer2, o.Bytes)
	default:
		return fmt.Sprintf("%v(peer=%d,bytes=%d)", o.Kind, o.Peer, o.Bytes)
	}
}

// Node is a skeleton program element: an OpNode or a LoopNode.
type Node interface {
	// Time returns the represented dedicated-run time of the node using
	// the signature's measured durations.
	Time() float64
	fmt.Stringer
}

// OpNode is a single operation occurrence.
type OpNode struct {
	Op Op
	// Dur is the operation's expected dedicated-testbed duration (from the
	// signature centroid), used for size accounting only; execution
	// regenerates real costs.
	Dur float64
}

// Time implements Node.
func (o OpNode) Time() float64 { return o.Dur }

func (o OpNode) String() string { return o.Op.String() }

// LoopNode repeats Body Count times.
type LoopNode struct {
	Count int
	Body  []Node
}

// Time implements Node.
func (l LoopNode) Time() float64 {
	t := 0.0
	for _, n := range l.Body {
		t += n.Time()
	}
	return t * float64(l.Count)
}

func (l LoopNode) String() string {
	parts := make([]string, len(l.Body))
	for i, n := range l.Body {
		parts[i] = n.String()
	}
	return fmt.Sprintf("[%s]x%d", strings.Join(parts, " "), l.Count)
}

// Program is a complete performance skeleton: one operation tree per rank.
type Program struct {
	NRanks     int
	K          int     // scaling factor applied
	AppTime    float64 // the traced application's dedicated execution time
	TargetTime float64 // intended skeleton time = AppTime / K
	// MinGoodTime is the framework's estimate of the shortest skeleton
	// that still predicts well (one full dominant-sequence iteration).
	MinGoodTime float64
	// Good is false when TargetTime < MinGoodTime; the framework's
	// "warning" of section 3.4.
	Good    bool
	PerRank [][]Node
}

// ExpectedTime returns the skeleton's expected dedicated execution time
// for rank r, from the signature's measured durations.
func (p *Program) ExpectedTime(r int) float64 {
	t := 0.0
	for _, n := range p.PerRank[r] {
		t += n.Time()
	}
	return t
}

// Ops returns the total operation count of rank r's program with loops
// expanded (the skeleton's dynamic length).
func (p *Program) Ops(r int) int {
	var count func(seq []Node) int
	count = func(seq []Node) int {
		n := 0
		for _, nd := range seq {
			switch x := nd.(type) {
			case OpNode:
				n++
			case LoopNode:
				n += x.Count * count(x.Body)
			}
		}
		return n
	}
	return count(p.PerRank[r])
}

func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "skeleton: K=%d target=%.3fs (app %.3fs, min good %.3fs, good=%v)\n",
		p.K, p.TargetTime, p.AppTime, p.MinGoodTime, p.Good)
	for r, seq := range p.PerRank {
		fmt.Fprintf(&b, "rank %d:", r)
		for _, n := range seq {
			fmt.Fprintf(&b, " %s", n)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
