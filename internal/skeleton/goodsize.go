package skeleton

import "perfskel/internal/signature"

// DefaultCoverage is the fraction of a rank's execution time a repeating
// sequence must represent to qualify as the dominant execution sequence.
const DefaultCoverage = 0.5

// MinGoodTime estimates the minimum execution time of a "good" skeleton
// (paper section 3.4): a skeleton is good if it retains at least one full
// iteration of the application's dominant execution sequence. The dominant
// sequence is the most-iterated loop (effective iteration count = product
// of its own and all enclosing loop counts) that still covers at least
// coverage of the rank's time; a skeleton scaled by K keeps >= 1 iteration
// of a loop with effective count P iff K <= P, so the minimum good
// skeleton time is AppTime / P.
//
// The returned bound is the largest per-rank minimum, so that every rank
// keeps a dominant iteration. If some rank has no qualifying loop, its
// execution has no exploitable cyclic structure and the bound is the full
// application time.
func MinGoodTime(sig *signature.Signature, coverage float64) float64 {
	if coverage <= 0 {
		coverage = DefaultCoverage
	}
	bound := 0.0
	for r := 0; r < sig.NRanks; r++ {
		rankTime := sig.RankTime(r)
		bestP := 0
		var walk func(seq []signature.Node, outer int)
		walk = func(seq []signature.Node, outer int) {
			for _, nd := range seq {
				l, ok := nd.(*signature.Loop)
				if !ok {
					continue
				}
				p := outer * l.Count
				if l.TotalTime()*float64(outer) >= coverage*rankTime && p > bestP {
					bestP = p
				}
				walk(l.Body, p)
			}
		}
		walk(sig.PerRank[r], 1)
		minR := sig.AppTime
		if bestP > 0 {
			minR = sig.AppTime / float64(bestP)
		}
		if minR > bound {
			bound = minR
		}
	}
	return bound
}
