package skeleton

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// jsonNode is the serialised form of a program Node: exactly one of Op or
// Loop is set.
type jsonNode struct {
	Op   *Op       `json:"op,omitempty"`
	Dur  float64   `json:"dur,omitempty"`
	Loop *jsonLoop `json:"loop,omitempty"`
}

type jsonLoop struct {
	Count int        `json:"count"`
	Body  []jsonNode `json:"body"`
}

type jsonProgram struct {
	NRanks      int          `json:"nranks"`
	K           int          `json:"k"`
	AppTime     float64      `json:"apptime"`
	TargetTime  float64      `json:"targettime"`
	MinGoodTime float64      `json:"mingoodtime"`
	Good        bool         `json:"good"`
	PerRank     [][]jsonNode `json:"perrank"`
}

func encodeSeq(seq []Node) []jsonNode {
	out := make([]jsonNode, 0, len(seq))
	for _, nd := range seq {
		switch x := nd.(type) {
		case OpNode:
			op := x.Op
			out = append(out, jsonNode{Op: &op, Dur: x.Dur})
		case LoopNode:
			out = append(out, jsonNode{Loop: &jsonLoop{Count: x.Count, Body: encodeSeq(x.Body)}})
		}
	}
	return out
}

func decodeSeq(seq []jsonNode) ([]Node, error) {
	out := make([]Node, 0, len(seq))
	for i, jn := range seq {
		switch {
		case jn.Op != nil && jn.Loop == nil:
			out = append(out, OpNode{Op: *jn.Op, Dur: jn.Dur})
		case jn.Loop != nil && jn.Op == nil:
			if jn.Loop.Count < 0 {
				return nil, fmt.Errorf("skeleton: negative loop count %d", jn.Loop.Count)
			}
			body, err := decodeSeq(jn.Loop.Body)
			if err != nil {
				return nil, err
			}
			out = append(out, LoopNode{Count: jn.Loop.Count, Body: body})
		default:
			return nil, fmt.Errorf("skeleton: node %d is neither op nor loop", i)
		}
	}
	return out, nil
}

// Write serialises the program as JSON.
func (p *Program) Write(w io.Writer) error {
	jp := jsonProgram{
		NRanks: p.NRanks, K: p.K,
		AppTime: p.AppTime, TargetTime: p.TargetTime,
		MinGoodTime: p.MinGoodTime, Good: p.Good,
	}
	for _, seq := range p.PerRank {
		jp.PerRank = append(jp.PerRank, encodeSeq(seq))
	}
	return json.NewEncoder(w).Encode(jp)
}

// Read deserialises a program written by Write.
func Read(r io.Reader) (*Program, error) {
	var jp jsonProgram
	if err := json.NewDecoder(r).Decode(&jp); err != nil {
		return nil, fmt.Errorf("skeleton: decode: %w", err)
	}
	if jp.NRanks <= 0 || len(jp.PerRank) != jp.NRanks {
		return nil, fmt.Errorf("skeleton: %d ranks with %d programs", jp.NRanks, len(jp.PerRank))
	}
	p := &Program{
		NRanks: jp.NRanks, K: jp.K,
		AppTime: jp.AppTime, TargetTime: jp.TargetTime,
		MinGoodTime: jp.MinGoodTime, Good: jp.Good,
	}
	for _, seq := range jp.PerRank {
		dec, err := decodeSeq(seq)
		if err != nil {
			return nil, err
		}
		p.PerRank = append(p.PerRank, dec)
	}
	return p, nil
}

// Save writes the program to a file.
func (p *Program) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a program from a file.
func Load(path string) (*Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
