package skeleton

import "testing"

// KForTime is the single K-derivation authority: BuildForTime and the
// public trace-for-time construction path both delegate to it. The cases
// pin the rounding behaviour at the half-way boundaries where two
// hand-rolled derivations historically could disagree (math.Round rounds
// half away from zero; a truncating int() would not).
func TestKForTime(t *testing.T) {
	cases := []struct {
		appTime, target float64
		want            int
	}{
		{10, 5, 2},
		{10, 4, 3},     // 2.5 rounds half away from zero, up to 3
		{10, 2.857, 4}, // 3.5004: just above the boundary
		{7, 2, 4},      // 3.5 rounds up to 4
		{10, 20, 1},    // sub-1 ratios clamp to K=1
		{10, 1e9, 1},
		{0.5, 0.2, 3}, // 2.5 again, fractional times
	}
	for _, c := range cases {
		got, err := KForTime(c.appTime, c.target)
		if err != nil {
			t.Errorf("KForTime(%v, %v): %v", c.appTime, c.target, err)
			continue
		}
		if got != c.want {
			t.Errorf("KForTime(%v, %v) = %d, want %d", c.appTime, c.target, got, c.want)
		}
	}
	for _, bad := range []float64{0, -1} {
		if _, err := KForTime(10, bad); err == nil {
			t.Errorf("KForTime(10, %v): want error", bad)
		}
	}
}

// BuildForTime must agree with KForTime at the rounding boundary.
func TestBuildForTimeUsesKForTime(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	target := sig.AppTime / 2.5 // exactly on the round-half boundary
	prog, err := BuildForTime(sig, target)
	if err != nil {
		t.Fatal(err)
	}
	want, err := KForTime(sig.AppTime, target)
	if err != nil {
		t.Fatal(err)
	}
	if prog.K != want {
		t.Fatalf("BuildForTime chose K=%d, KForTime says %d", prog.K, want)
	}
	if want != 3 {
		t.Fatalf("boundary case should derive K=3 (round 2.5 away from zero), got %d", want)
	}
	if _, err := BuildForTime(sig, 0); err == nil {
		t.Error("want error for non-positive target")
	}
}
