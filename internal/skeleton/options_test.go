package skeleton

import (
	"math"
	"testing"

	"perfskel/internal/cluster"
	"perfskel/internal/mpi"
	"perfskel/internal/signature"
	"perfskel/internal/trace"
)

func TestTimeScaleShrinksToTimeBudget(t *testing.T) {
	// A 1 MB op scaled by K=100 under TimeScale: t = L + 1e6/B, bytes' =
	// (t/100 - L) * B.
	lat, bw := 50e-6, 125e6
	op := Op{Kind: mpi.OpSendrecv, Peer: 1, Peer2: 1, Bytes: 1 << 20}
	scaled, keep := scaleOpts(op, 100, Options{Mode: TimeScale, Latency: lat, Bandwidth: bw}.withDefaults())
	if !keep {
		t.Fatal("op dropped although scaled time exceeds latency")
	}
	wantT := (lat + float64(op.Bytes)/bw) / 100
	gotT := lat + float64(scaled.Bytes)/bw
	if math.Abs(gotT-wantT)/wantT > 0.01 {
		t.Errorf("scaled op time %v, want %v", gotT, wantT)
	}
}

func TestTimeScaleDropsSymmetricLatencyBoundOps(t *testing.T) {
	// A small collective scaled by a huge K falls below one latency and is
	// dropped.
	op := Op{Kind: mpi.OpAllreduce, Peer: mpi.None, Bytes: 8}
	if _, keep := scaleOpts(op, 1000, Options{Mode: TimeScale}.withDefaults()); keep {
		t.Error("latency-bound collective not dropped under TimeScale")
	}
	// Point-to-point ops must never be dropped (the two ends could decide
	// differently); they shrink to 1 byte instead.
	p2p := Op{Kind: mpi.OpSend, Peer: 1, Bytes: 8}
	scaled, keep := scaleOpts(p2p, 1000, Options{Mode: TimeScale}.withDefaults())
	if !keep || scaled.Bytes != 1 {
		t.Errorf("p2p op: keep=%v bytes=%d, want kept at 1 byte", keep, scaled.Bytes)
	}
}

func TestByteScaleKeepsEverything(t *testing.T) {
	op := Op{Kind: mpi.OpAllreduce, Peer: mpi.None, Bytes: 8}
	scaled, keep := scaleOpts(op, 1000, Options{}.withDefaults())
	if !keep || scaled.Bytes != 1 {
		t.Errorf("byte scale: keep=%v bytes=%d", keep, scaled.Bytes)
	}
}

func TestTimeScaleSkeletonRunsCloserToTargetUnderLatency(t *testing.T) {
	// A signature whose unreduced part holds 90 latency-bound allreduces
	// (no loop structure, so step 1 cannot reduce them) scaled by K=100:
	// byte scaling keeps all 90 at 1 byte — 90 un-scalable latencies —
	// while time scaling drops them, landing near the target.
	comp := &signature.Cluster{ID: 0, Op: mpi.OpCompute, Peer: mpi.None, Peer2: mpi.None, Duration: 1.0, Count: 1}
	ar := &signature.Cluster{ID: 1, Op: mpi.OpAllreduce, Peer: mpi.None, Peer2: mpi.None, Bytes: 64, Duration: 2e-4, Count: 90}
	seq := []signature.Node{signature.Leaf{C: comp}}
	for i := 0; i < 90; i++ {
		seq = append(seq, signature.Leaf{C: ar})
	}
	appTime := 1.0 + 90*2e-4
	sig := &signature.Signature{
		NRanks: 2, AppTime: appTime,
		PerRank:  [][]signature.Node{seq, seq},
		Clusters: []*signature.Cluster{comp, ar},
	}
	const k = 100
	run := func(opts Options) float64 {
		p, err := BuildOpts(sig, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
		d, err := Run(p, cl, freeCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	target := appTime / k
	byteT := run(Options{Mode: ByteScale})
	timeT := run(Options{Mode: TimeScale})
	if math.Abs(timeT-target) >= math.Abs(byteT-target) {
		t.Errorf("time scaling (%v) not closer to target %v than byte scaling (%v)", timeT, target, byteT)
	}
	if byteT < target*1.3 {
		t.Errorf("byte scaling %v does not exhibit the latency overshoot (target %v)", byteT, target)
	}
}

func TestSpreadComputeAttachesQuantiles(t *testing.T) {
	// Compute durations alternate between two levels; with SpreadCompute
	// the skeleton op carries a distribution spanning them.
	app := func(c *mpi.Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < 40; i++ {
			if i%2 == 0 {
				c.Compute(0.010)
			} else {
				c.Compute(0.014)
			}
			c.Sendrecv(peer, 1000, peer, 1)
		}
	}
	// A high threshold merges both compute levels into one cluster.
	cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
	sig := traceAndSignThreshold(t, cl, app, 0.5)
	p, err := BuildOpts(sig, 4, Options{SpreadCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	scan(p, func(op Op) {
		if op.Kind == mpi.OpCompute && len(op.Dist) > 1 {
			lo, hi := op.Dist[0], op.Dist[len(op.Dist)-1]
			if lo < 0.011 && hi > 0.013 {
				found = true
			}
		}
	})
	if !found {
		t.Errorf("no compute op carries the bimodal duration distribution: %s", p)
	}
}

func TestSpreadComputePreservesMeanWork(t *testing.T) {
	// The quantile distribution's mean must match the cluster mean: the
	// spread skeleton reproduces variability without changing total work.
	app := func(c *mpi.Comm) {
		peer := 1 - c.Rank()
		for i := 0; i < 60; i++ {
			c.Compute(0.010 + 0.004*float64(i%3))
			c.Sendrecv(peer, 1000, peer, 1)
		}
	}
	cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
	sig := traceAndSignThreshold(t, cl, app, 0.5)
	spread, err := BuildOpts(sig, 6, Options{SpreadCompute: true})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	scan(spread, func(op Op) {
		if op.Kind != mpi.OpCompute || len(op.Dist) == 0 {
			return
		}
		sum := 0.0
		for _, d := range op.Dist {
			sum += d
		}
		m := sum / float64(len(op.Dist))
		if math.Abs(m-op.Work)/op.Work > 0.05 {
			t.Errorf("distribution mean %v deviates from cluster mean %v", m, op.Work)
		}
		checked++
	})
	if checked == 0 {
		t.Error("no compute op carried a distribution")
	}
}

func TestSpreadComputeImprovesUnbalancedPrediction(t *testing.T) {
	// Ranks alternate light/heavy computation out of phase, synchronising
	// every iteration: under unbalanced CPU sharing the application's
	// slowdown depends on the duration distribution, which the mean-based
	// skeleton misses (the paper's explanation of its unbalanced-scenario
	// error, section 4.4).
	app := func(c *mpi.Comm) {
		for i := 0; i < 120; i++ {
			if (i+c.Rank())%2 == 0 {
				c.Compute(0.05)
			} else {
				c.Compute(0.15)
			}
			c.Barrier()
		}
	}
	cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
	sig := traceAndSignThreshold(t, cl, app, 0.9) // merge both levels
	appDed, err := mpi.Run(cluster.Build(cluster.Testbed(2), cluster.Dedicated()), 2, freeCfg, nil, app)
	if err != nil {
		t.Fatal(err)
	}
	appShared, err := mpi.Run(cluster.Build(cluster.Testbed(2), cluster.CPUOneNode()), 2, freeCfg, nil, app)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(opts Options) float64 {
		p, err := BuildOpts(sig, 10, opts)
		if err != nil {
			t.Fatal(err)
		}
		ded, err := Run(p, cluster.Build(cluster.Testbed(2), cluster.Dedicated()), freeCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		sh, err := Run(p, cluster.Build(cluster.Testbed(2), cluster.CPUOneNode()), freeCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		pred := sh * appDed / ded
		return math.Abs(pred-appShared) / appShared
	}
	meanErr := errOf(Options{})
	spreadErr := errOf(Options{SpreadCompute: true})
	if spreadErr >= meanErr {
		t.Errorf("spread error %.3f not below mean error %.3f for unbalanced scenario", spreadErr, meanErr)
	}
	if meanErr < 0.05 {
		t.Errorf("mean-based error %.3f too small; test workload not discriminating", meanErr)
	}
}

// traceAndSignThreshold traces app on cl and compresses at a fixed
// threshold.
func traceAndSignThreshold(t *testing.T, cl *cluster.Cluster, app mpi.App, thr float64) *signature.Signature {
	t.Helper()
	rec := trace.NewRecorder(cl.Nodes())
	dur, err := mpi.Run(cl, cl.Nodes(), freeCfg, rec, app)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := signature.Build(rec.Finish(dur), signature.Options{InitialThreshold: thr})
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestRescaleRingSkeleton(t *testing.T) {
	// A ring-pattern skeleton built at 4 ranks reruns at 8 ranks.
	app := func(c *mpi.Comm) {
		n, r := c.Size(), c.Rank()
		next, prev := (r+1)%n, (r-1+n)%n
		for i := 0; i < 30; i++ {
			c.Compute(0.01)
			c.Sendrecv(next, 50000, prev, 1)
			c.Allreduce(8)
		}
	}
	sig := traceAndSign(t, 4, 5, app)
	p, err := Build(sig, 5)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := Rescale(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p8.NRanks != 8 || len(p8.PerRank) != 8 {
		t.Fatalf("rescaled program has %d ranks", p8.NRanks)
	}
	cl := cluster.Build(cluster.Testbed(8), cluster.Dedicated())
	d8, err := Run(p8, cl, freeCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Weak scaling: the rescaled skeleton's time stays in the same ballpark
	// (collectives get slightly more expensive).
	cl4 := cluster.Build(cluster.Testbed(4), cluster.Dedicated())
	d4, err := Run(p, cl4, freeCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d8 < d4*0.8 || d8 > d4*1.5 {
		t.Errorf("rescaled skeleton ran %v vs original %v", d8, d4)
	}
}

func TestRescaleIdentityAndErrors(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	p, err := Build(sig, 5)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Rescale(p, 2)
	if err != nil || same != p {
		t.Errorf("identity rescale: %v, %v", same, err)
	}
	if _, err := Rescale(p, 0); err == nil {
		t.Error("want error for zero ranks")
	}
	// A rank-dependent program cannot be rescaled.
	asym := &Program{NRanks: 2, K: 1, PerRank: [][]Node{
		{OpNode{Op: Op{Kind: mpi.OpCompute, Work: 1}}},
		{OpNode{Op: Op{Kind: mpi.OpCompute, Work: 2}}},
	}}
	if _, err := Rescale(asym, 4); err == nil {
		t.Error("want error for rank-dependent program")
	}
}
