package skeleton

import (
	"fmt"
	"sort"

	"perfskel/internal/mpi"
	"perfskel/internal/signature"
	"perfskel/internal/trace"
)

// Consistent reports whether the skeleton's per-rank programs describe a
// mutually consistent communication pattern once loops are expanded:
// every rank performs the same sequence of collective operation kinds and
// roots (sizes may differ — the runtime still matches them — but counts
// and order must align or the ranks desynchronise), and for every
// (source, destination, tag) triple the sends match the receives. An
// inconsistent skeleton deadlocks when executed; Build can produce one
// when the similarity threshold made corresponding events cluster — and
// therefore fold — differently across ranks.
//
// Receives with wildcard source or tag cannot be matched statically; if
// any are present only the collective check is performed.
func (p *Program) Consistent() error {
	type collOp struct {
		kind mpi.Op
		root int
	}
	type p2pKey struct {
		src, dst, tag int
	}
	collSeqs := make([][]collOp, p.NRanks)
	sends := make(map[p2pKey]int)
	recvs := make(map[p2pKey]int)
	wildcards := false

	for rank := range p.PerRank {
		var coll []collOp
		var walk func(seq []Node, mult int)
		walk = func(seq []Node, mult int) {
			for _, nd := range seq {
				switch x := nd.(type) {
				case LoopNode:
					before := len(coll)
					walk(x.Body, mult*x.Count)
					iter := append([]collOp(nil), coll[before:]...)
					for i := 1; i < x.Count; i++ {
						coll = append(coll, iter...)
					}
				case OpNode:
					op := x.Op
					switch {
					case op.Kind.IsCollective():
						root := op.Peer
						if !hasRoot(op.Kind) {
							root = mpi.None
						}
						coll = append(coll, collOp{kind: op.Kind, root: root})
					case op.Kind == mpi.OpSend || op.Kind == mpi.OpIsend:
						sends[p2pKey{src: rank, dst: op.Peer, tag: op.Tag}] += mult
					case op.Kind == mpi.OpRecv || op.Kind == mpi.OpIrecv:
						if op.Peer == mpi.AnySource || op.Tag == mpi.AnyTag {
							wildcards = true
						} else {
							recvs[p2pKey{src: op.Peer, dst: rank, tag: op.Tag}] += mult
						}
					case op.Kind == mpi.OpSendrecv:
						sends[p2pKey{src: rank, dst: op.Peer, tag: op.Tag}] += mult
						recvs[p2pKey{src: op.Peer2, dst: rank, tag: op.Tag}] += mult
					}
				}
			}
		}
		walk(p.PerRank[rank], 1)
		collSeqs[rank] = coll
	}

	for r := 1; r < p.NRanks; r++ {
		if len(collSeqs[r]) != len(collSeqs[0]) {
			return fmt.Errorf("skeleton: rank %d performs %d collective calls, rank 0 %d",
				r, len(collSeqs[r]), len(collSeqs[0]))
		}
		for i := range collSeqs[0] {
			if collSeqs[r][i] != collSeqs[0][i] {
				return fmt.Errorf("skeleton: collective call %d differs: rank 0 %v(root=%d), rank %d %v(root=%d)",
					i, collSeqs[0][i].kind, collSeqs[0][i].root, r, collSeqs[r][i].kind, collSeqs[r][i].root)
			}
		}
	}
	if wildcards {
		return nil
	}
	// Check mismatches in sorted key order so the reported error is the
	// same on every run (map iteration order would pick an arbitrary
	// one).
	keys := make([]p2pKey, 0, len(sends)+len(recvs))
	for k := range sends {
		keys = append(keys, k)
	}
	for k := range recvs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue
		}
		if ns, nr := sends[k], recvs[k]; ns != nr {
			if ns > 0 {
				return fmt.Errorf("skeleton: %d sends %d->%d tag %d but %d receives", ns, k.src, k.dst, k.tag, nr)
			}
			return fmt.Errorf("skeleton: %d receives %d->%d tag %d but %d sends", nr, k.src, k.dst, k.tag, ns)
		}
	}
	return nil
}

// hasRoot reports whether the collective's Peer field is a root rank.
func hasRoot(op mpi.Op) bool {
	switch op {
	case mpi.OpBcast, mpi.OpReduce, mpi.OpGather, mpi.OpScatter:
		return true
	}
	return false
}

// BuildFromTrace runs the complete signature-plus-skeleton construction
// for scaling factor K: the similarity threshold is raised (geometric
// steps, as signature.Build) until the compression ratio reaches Q = K/2
// AND the resulting skeleton is consistent across ranks. This is the
// entry point the experiment drivers and tools use; signature.Build alone
// cannot see scaling-induced inconsistencies.
//
// If no threshold yields both, the best consistent skeleton is returned
// (TargetMet false on its signature); if no threshold yields a consistent
// skeleton at all, an error describing the inconsistency is returned.
func BuildFromTrace(tr *trace.Trace, k int, opts Options) (*Program, *signature.Signature, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("skeleton: scaling factor K must be >= 1, got %d", k)
	}
	target := float64(k) / 2
	var bestP *Program
	var bestS *signature.Signature
	var lastErr error
	t, step := 0.0, 0.005
	for {
		sig, err := signature.Build(tr, signature.Options{InitialThreshold: t})
		if err != nil {
			return nil, nil, err
		}
		prog, err := BuildOpts(sig, k, opts)
		if err != nil {
			return nil, nil, err
		}
		if cerr := prog.Consistent(); cerr == nil {
			if sig.Ratio >= target {
				sig.TargetMet = true
				return prog, sig, nil
			}
			if bestS == nil || sig.Ratio > bestS.Ratio {
				bestP, bestS = prog, sig
			}
		} else {
			lastErr = cerr
		}
		if t >= 1.0 {
			break
		}
		t += step
		step *= 1.3
		if t > 1.0 {
			t = 1.0
		}
	}
	if bestP != nil {
		return bestP, bestS, nil
	}
	return nil, nil, fmt.Errorf("skeleton: no similarity threshold yields a consistent skeleton (K=%d): %w", k, lastErr)
}
