package skeleton

import (
	"math"
	"math/rand"
	"testing"

	"perfskel/internal/cluster"
	"perfskel/internal/mpi"
	"perfskel/internal/signature"
	"perfskel/internal/trace"
)

// randLoopApp generates a random symmetric iterative program: a loop of
// random body steps (the cyclic structure real applications have) with a
// random prologue. Skeletons of such programs must build, run and scale.
func randLoopApp(rng *rand.Rand, n int) mpi.App {
	iters := 20 + rng.Intn(60)
	type step struct {
		kind  int
		bytes int64
		off   int
		work  float64
	}
	body := make([]step, 1+rng.Intn(5))
	for i := range body {
		body[i] = step{
			kind:  rng.Intn(4),
			bytes: 1 << (6 + rng.Intn(14)),
			off:   1 + rng.Intn(n-1),
			work:  0.001 + rng.Float64()*0.02,
		}
	}
	prologueWork := rng.Float64() * 0.05
	return func(c *mpi.Comm) {
		r := c.Rank()
		c.Compute(prologueWork)
		for it := 0; it < iters; it++ {
			for i, s := range body {
				switch s.kind {
				case 0:
					c.Compute(s.work)
				case 1:
					c.Sendrecv((r+s.off)%n, s.bytes, (r-s.off+n)%n, i)
				case 2:
					c.Allreduce(s.bytes % 2048)
				case 3:
					sr := c.Isend((r+s.off)%n, 100+i, s.bytes)
					rr := c.Irecv((r-s.off+n)%n, 100+i)
					c.Waitall(sr, rr)
				}
			}
		}
	}
}

// TestPipelinePropertyRandomPrograms: for random iterative programs, the
// full trace -> signature -> skeleton pipeline produces runnable skeletons
// whose dedicated time is within a factor of two of AppTime/K.
func TestPipelinePropertyRandomPrograms(t *testing.T) {
	const ranks = 4
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		app := randLoopApp(rng, ranks)

		cl := cluster.Build(cluster.Testbed(ranks), cluster.Dedicated())
		rec := trace.NewRecorder(ranks)
		appTime, err := mpi.Run(cl, ranks, mpi.Config{}, rec, app)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := rec.Finish(appTime)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		k := 2 + rng.Intn(10)
		sig, err := signature.Build(tr, signature.Options{TargetRatio: float64(k) / 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Signature sanity: represented time matches the trace.
		for r := 0; r < ranks; r++ {
			if got := sig.RankTime(r); math.Abs(got-appTime)/appTime > 0.05 {
				t.Errorf("seed %d rank %d: signature time %v vs app %v", seed, r, got, appTime)
			}
		}
		prog, err := Build(sig, k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		clS := cluster.Build(cluster.Testbed(ranks), cluster.Dedicated())
		skelTime, err := Run(prog, clS, mpi.Config{}, nil)
		if err != nil {
			t.Fatalf("seed %d: skeleton run: %v", seed, err)
		}
		// Factor-of-two around the target, plus a few milliseconds of
		// absolute slack: very short programs are dominated by per-message
		// latency floors that no scaling can reduce.
		target := appTime / float64(k)
		if skelTime < target/2-0.003 || skelTime > target*2+0.003 {
			t.Errorf("seed %d: skeleton ran %v, target %v (K=%d)", seed, skelTime, target, k)
		}
	}
}

// TestPipelinePropertySlowdownTracking: random programs' skeletons track
// the application's slowdown under CPU sharing within 15%.
func TestPipelinePropertySlowdownTracking(t *testing.T) {
	const ranks = 4
	for seed := int64(50); seed < 58; seed++ {
		rng := rand.New(rand.NewSource(seed))
		app := randLoopApp(rng, ranks)

		rec := trace.NewRecorder(ranks)
		appDed, err := mpi.Run(cluster.Build(cluster.Testbed(ranks), cluster.Dedicated()), ranks, mpi.Config{}, rec, app)
		if err != nil {
			t.Fatal(err)
		}
		sig, err := signature.Build(rec.Finish(appDed), signature.Options{TargetRatio: 3})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Build(sig, 6)
		if err != nil {
			t.Fatal(err)
		}
		sc := cluster.CPUAllNodes(ranks)
		appShared, err := mpi.Run(cluster.Build(cluster.Testbed(ranks), sc), ranks, mpi.Config{}, nil, app)
		if err != nil {
			t.Fatal(err)
		}
		skelDed, err := Run(prog, cluster.Build(cluster.Testbed(ranks), cluster.Dedicated()), mpi.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		skelShared, err := Run(prog, cluster.Build(cluster.Testbed(ranks), sc), mpi.Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		appSlow := appShared / appDed
		skelSlow := skelShared / skelDed
		if math.Abs(appSlow-skelSlow)/appSlow > 0.15 {
			t.Errorf("seed %d: app slowdown %.3f vs skeleton %.3f", seed, appSlow, skelSlow)
		}
	}
}
