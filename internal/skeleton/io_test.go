package skeleton

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"perfskel/internal/cluster"
)

func TestProgramRoundTrip(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NRanks != p.NRanks || got.K != p.K || got.Good != p.Good ||
		got.AppTime != p.AppTime || got.MinGoodTime != p.MinGoodTime {
		t.Errorf("metadata mismatch: %+v vs %+v", got, p)
	}
	if !reflect.DeepEqual(got.PerRank, p.PerRank) {
		t.Error("program trees differ after round trip")
	}
}

func TestProgramSaveLoadAndRun(t *testing.T) {
	sig := traceAndSign(t, 2, 5, iterApp)
	p, err := Build(sig, 20)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "skel.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// A loaded program must execute identically to the original.
	run := func(prog *Program) float64 {
		cl := cluster.Build(cluster.Testbed(2), cluster.Dedicated())
		d, err := Run(prog, cl, freeCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if d1, d2 := run(p), run(got); d1 != d2 {
		t.Errorf("loaded program ran %v, original %v", d2, d1)
	}
}

func TestReadRejectsCorruptPrograms(t *testing.T) {
	cases := []string{
		`{"nranks":2,"perrank":[[]]}`,                      // rank count mismatch
		`{"nranks":1,"perrank":[[{"dur":1}]]}`,             // neither op nor loop
		`{"nranks":1,"perrank":[[{"loop":{"count":-2}}]]}`, // negative count
		`not json`, // garbage
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}
