package skeleton

import (
	"perfskel/internal/signature"
)

// Canon maps a skeleton program onto the canonical signature form
// (signature.CanonSignature): the representation the static extractor
// (internal/analysis/commgraph) recovers from generated skeleton
// source. The codegen gate requires Canon(p) to equal the canonical
// form extracted back from GoSource(p), proving the emitted program
// performs exactly the operations the skeleton prescribes.
func Canon(p *Program) *signature.CanonSignature {
	cs := &signature.CanonSignature{NRanks: p.NRanks}
	for _, seq := range p.PerRank {
		cs.PerRank = append(cs.PerRank, signature.NormalizeSeq(canonNodes(seq)))
	}
	return cs
}

func canonNodes(seq []Node) []signature.CanonNode {
	var out []signature.CanonNode
	for _, nd := range seq {
		switch x := nd.(type) {
		case OpNode:
			op := signature.CanonOp{
				Kind: x.Op.Kind, Sub: x.Op.Sub, Peer: x.Op.Peer, Peer2: x.Op.Peer2,
				Tag: x.Op.Tag, Bytes: x.Op.Bytes, Work: x.Op.Work,
			}
			out = append(out, signature.CanonNode{Op: &op})
		case LoopNode:
			out = append(out, signature.CanonNode{Count: int64(x.Count), Body: canonNodes(x.Body)})
		}
	}
	return out
}
