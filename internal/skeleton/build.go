package skeleton

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"perfskel/internal/cluster"
	"perfskel/internal/mpi"
	"perfskel/internal/signature"
)

// ErrBadK reports an unusable skeleton scaling factor — K below 1, or a
// non-positive target time to derive it from. Callers branch on it with
// errors.Is (the prediction service maps it to a 400).
var ErrBadK = errors.New("bad scaling factor")

// ScaleMode selects how unreduced communication operations are scaled
// down by K (step 3 of section 3.3).
type ScaleMode int

const (
	// ByteScale divides the byte count by K, the paper's approach. Its
	// known weakness: the latency component of the scaled operation is not
	// reduced, inflating skeleton communication time under low-bandwidth
	// sharing.
	ByteScale ScaleMode = iota
	// TimeScale divides the operation's *estimated time* by K under an
	// assumed latency/bandwidth, converting back to a byte count and
	// dropping operations whose scaled time falls below one latency — the
	// improvement the paper says requires assumptions about the execution
	// environment (section 3.3).
	TimeScale
)

// Options tunes skeleton construction beyond the paper's defaults.
type Options struct {
	// Mode selects communication scaling (default ByteScale, the paper's).
	Mode ScaleMode
	// Latency and Bandwidth are the environment assumptions of TimeScale;
	// defaults are the simulated testbed's (50 us, 125 MB/s).
	Latency   float64
	Bandwidth float64
	// SpreadCompute reproduces the empirical distribution of compute
	// durations (cycling through quantiles per loop iteration) instead of
	// the cluster mean — the paper's future-work fix for unbalanced
	// scenarios (section 4.4).
	SpreadCompute bool
	// Coverage is the dominant-sequence coverage threshold for the
	// smallest-good-skeleton bound (default DefaultCoverage).
	Coverage float64
}

func (o Options) withDefaults() Options {
	if o.Latency == 0 {
		o.Latency = cluster.DefaultLatency
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = cluster.GigabitBandwidth
	}
	if o.Coverage == 0 {
		o.Coverage = DefaultCoverage
	}
	return o
}

// Build constructs a performance skeleton from an execution signature with
// integer scaling factor K, following the paper's four-step procedure
// (section 3.3):
//
//  1. Loop iteration counts are divided by K; remainder iterations are
//     unrolled into the unreduced part.
//  2. Groups of K identical operations anywhere in the unreduced part are
//     replaced by a single (unscaled) occurrence.
//  3. Remaining unreduced operations are scaled down by K by adjusting
//     parameters (see ScaleMode).
//  4. The result is an executable synthetic program (and can be rendered
//     to C or Go source, see codegen).
func Build(sig *signature.Signature, k int) (*Program, error) {
	return BuildOpts(sig, k, Options{})
}

// BuildOpts is Build with explicit construction options.
func BuildOpts(sig *signature.Signature, k int, opts Options) (*Program, error) {
	if k < 1 {
		return nil, fmt.Errorf("skeleton: scaling factor K must be >= 1, got %d: %w", k, ErrBadK)
	}
	opts = opts.withDefaults()
	p := &Program{
		NRanks:      sig.NRanks,
		K:           k,
		AppTime:     sig.AppTime,
		TargetTime:  sig.AppTime / float64(k),
		MinGoodTime: MinGoodTime(sig, opts.Coverage),
	}
	p.Good = p.TargetTime >= p.MinGoodTime-1e-9
	for r := 0; r < sig.NRanks; r++ {
		p.PerRank = append(p.PerRank, scaleSeq(sig.PerRank[r], k, opts))
	}
	return p, nil
}

// KForTime derives the integer scaling factor for an intended skeleton
// execution time: K = round(appTime / target), at least 1, as the paper's
// experiments do for their 10/5/2/1/0.5-second skeletons. Every
// time-targeted construction path must derive K through this helper so
// the paths cannot disagree at rounding boundaries.
func KForTime(appTime, target float64) (int, error) {
	if target <= 0 {
		return 0, fmt.Errorf("skeleton: target time must be positive, got %v: %w", target, ErrBadK)
	}
	k := int(math.Round(appTime / target))
	if k < 1 {
		k = 1
	}
	return k, nil
}

// BuildForTime constructs a skeleton with an intended execution time,
// deriving K with KForTime.
func BuildForTime(sig *signature.Signature, target float64) (*Program, error) {
	k, err := KForTime(sig.AppTime, target)
	if err != nil {
		return nil, err
	}
	return Build(sig, k)
}

// distQuantiles is how many duration quantiles SpreadCompute retains per
// compute cluster.
const distQuantiles = 8

// opFromCluster converts a signature cluster centroid to a skeleton
// operation plus its measured dedicated duration.
func opFromCluster(c *signature.Cluster, opts Options) (Op, float64) {
	op := Op{
		Kind: c.Op, Sub: c.Sub,
		Peer: c.Peer, Peer2: c.Peer2, Tag: c.Tag,
		Bytes: int64(math.Round(c.Bytes)),
		Byte2: int64(math.Round(c.Byte2)),
	}
	if c.Op == mpi.OpCompute {
		op.Work = c.Duration
		if opts.SpreadCompute && len(c.Durations) > 1 {
			op.Dist = quantiles(c.Durations, distQuantiles)
		}
	}
	return op, c.Duration
}

// quantiles returns n evenly spaced midpoint quantiles of the samples, in
// a bit-reversed (interleaved) order so that loops whose iteration count
// is not a multiple of n still sample the distribution nearly evenly.
func quantiles(samples []float64, n int) []float64 {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	ordered := make([]float64, n)
	for i := 0; i < n; i++ {
		idx := (2*i + 1) * len(s) / (2 * n)
		if idx >= len(s) {
			idx = len(s) - 1
		}
		ordered[i] = s[idx]
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = ordered[bitReverse(i, n)]
	}
	return out
}

// bitReverse reverses the bits of i within the width of n (a power of
// two); for non-power-of-two n it degrades to identity.
func bitReverse(i, n int) int {
	if n&(n-1) != 0 {
		return i
	}
	r := 0
	for m := 1; m < n; m <<= 1 {
		r <<= 1
		if i&1 != 0 {
			r |= 1
		}
		i >>= 1
	}
	return r
}

// opKey is the comparable identity of an operation for the group-of-K
// rule; it excludes the (unhashable, informational) duration distribution.
type opKey struct {
	Kind  mpi.Op
	Sub   mpi.Op
	Peer  int
	Peer2 int
	Tag   int
	Bytes int64
	Byte2 int64
	Work  float64
}

func identity(op Op) opKey {
	return opKey{
		Kind: op.Kind, Sub: op.Sub,
		Peer: op.Peer, Peer2: op.Peer2, Tag: op.Tag,
		Bytes: op.Bytes, Byte2: op.Byte2, Work: op.Work,
	}
}

// pendingOp is an unreduced operation awaiting the group-of-K pass.
type pendingOp struct {
	op  Op
	dur float64
}

// scaleSeq applies the scaling procedure to one rank's signature sequence.
func scaleSeq(seq []signature.Node, k int, opts Options) []Node {
	var out []Node
	var pending []pendingOp

	flush := func() {
		if len(pending) == 0 {
			return
		}
		// Step 2+3 over the whole unreduced stretch: count occurrences per
		// identical operation; every K-th occurrence is kept unscaled
		// (representing its group of K), and occurrences past the last
		// full group are kept with parameters scaled down by K.
		counts := make(map[opKey]int)
		for _, po := range pending {
			counts[identity(po.op)]++
		}
		seen := make(map[opKey]int)
		for _, po := range pending {
			id := identity(po.op)
			j := seen[id]
			seen[id] = j + 1
			q := counts[id] / k
			switch {
			case j < q*k && j%k == 0:
				// Representative of a full group of K.
				out = append(out, OpNode{Op: po.op, Dur: po.dur})
			case j < q*k:
				// Absorbed into its group's representative.
			default:
				// Leftover: scale parameters down by K.
				if op, keep := scaleOpts(po.op, k, opts); keep {
					out = append(out, OpNode{Op: op, Dur: po.dur / float64(k)})
				}
			}
		}
		pending = pending[:0]
	}

	var process func(nodes []signature.Node)
	process = func(nodes []signature.Node) {
		for _, nd := range nodes {
			switch x := nd.(type) {
			case signature.Leaf:
				op, dur := opFromCluster(x.C, opts)
				pending = append(pending, pendingOp{op: op, dur: dur})
			case *signature.Loop:
				q, r := x.Count/k, x.Count%k
				if q > 0 {
					flush()
					out = append(out, LoopNode{Count: q, Body: verbatim(x.Body, opts)})
				}
				// Remainder iterations join the unreduced part; nested
				// loops inside them are scaled recursively.
				for i := 0; i < r; i++ {
					process(x.Body)
				}
			}
		}
	}
	process(seq)
	flush()
	return out
}

// verbatim converts signature nodes to skeleton nodes without scaling
// (for the bodies of reduced loops: each retained iteration is a full
// original iteration).
func verbatim(seq []signature.Node, opts Options) []Node {
	out := make([]Node, 0, len(seq))
	for _, nd := range seq {
		switch x := nd.(type) {
		case signature.Leaf:
			op, dur := opFromCluster(x.C, opts)
			out = append(out, OpNode{Op: op, Dur: dur})
		case *signature.Loop:
			out = append(out, LoopNode{Count: x.Count, Body: verbatim(x.Body, opts)})
		}
	}
	return out
}

// scaleOpts reduces an operation's parameters by K (step 3) under the
// selected mode. The returned bool is false when the operation should be
// dropped entirely (TimeScale, scaled time below one latency). Dropping is
// symmetric across ranks because it depends only on the operation's own
// parameters, which match on both ends of a communication.
func scaleOpts(op Op, k int, opts Options) (Op, bool) {
	op2 := op
	op2.Work /= float64(k)
	if op.Bytes <= 0 || !op.Kind.IsCollective() && op.Kind != mpi.OpSend && op.Kind != mpi.OpRecv &&
		op.Kind != mpi.OpIsend && op.Kind != mpi.OpIrecv && op.Kind != mpi.OpSendrecv && op.Kind != mpi.OpWait {
		return op2, true
	}
	switch opts.Mode {
	case TimeScale:
		t := opts.Latency + float64(op.Bytes)/opts.Bandwidth
		scaled := t / float64(k)
		if scaled <= opts.Latency {
			// The operation's scaled time is below one latency: it cannot
			// be represented by a smaller message. Symmetric operations
			// (collectives, sendrecv) are dropped outright — every rank
			// makes the same decision. One-sided point-to-point operations
			// are never dropped: an Irecv records zero bytes at post time,
			// so the two ends of a message could decide differently and
			// deadlock the skeleton; they shrink to the minimum instead.
			if op.Kind.IsCollective() || op.Kind == mpi.OpSendrecv {
				return op2, false
			}
			op2.Bytes = 1
			if op.Byte2 > 0 {
				op2.Byte2 = 1
			}
			return op2, true
		}
		op2.Bytes = int64(math.Max(1, (scaled-opts.Latency)*opts.Bandwidth))
		if op.Byte2 > 0 {
			t2 := opts.Latency + float64(op.Byte2)/opts.Bandwidth
			op2.Byte2 = int64(math.Max(1, (t2/float64(k)-opts.Latency)*opts.Bandwidth))
		}
	default: // ByteScale
		op2.Bytes = op.Bytes / int64(k)
		if op2.Bytes == 0 {
			op2.Bytes = 1
		}
		if op.Byte2 > 0 {
			op2.Byte2 = op.Byte2 / int64(k)
			if op2.Byte2 == 0 {
				op2.Byte2 = 1
			}
		}
	}
	return op2, true
}

// scaleOp reduces an operation's parameters by K with the paper's byte
// scaling; kept for the basic path and tests.
func scaleOp(op Op, k int) Op {
	out, _ := scaleOpts(op, k, Options{}.withDefaults())
	return out
}
