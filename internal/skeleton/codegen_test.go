package skeleton

import (
	"fmt"
	"strings"
	"testing"

	"perfskel/internal/analysis"
	"perfskel/internal/analysis/commgraph"
	"perfskel/internal/mpi"
	"perfskel/internal/signature"
)

// gateLoader is shared across the codegen gate tests: building a loader
// typechecks the module and the stdlib from source once, which is the
// expensive part.
var gateLoader *analysis.Loader

// gateGoSource is the codegen quality gate: generated Go source must
// parse, typecheck against the real perfskel API, come back clean from
// every skelvet rule, and — the static-signature gate — the execution
// signature recovered from the source text by symbolic execution must
// equal the program it was generated from, operation for operation.
// Returning text that merely "looks like Go" is not enough to close
// the loop from trace to replayable program. The recovered canonical
// signature is returned for further checks against the dynamic
// signature.
func gateGoSource(t *testing.T, name, src string, p *Program) *signature.CanonSignature {
	t.Helper()
	if gateLoader == nil {
		l, err := analysis.NewLoader(".")
		if err != nil {
			t.Fatalf("analysis loader: %v", err)
		}
		gateLoader = l
	}
	pkg, err := gateLoader.LoadSource(name+".go", src)
	if err != nil {
		t.Fatalf("%s: generated source does not typecheck: %v", name, err)
	}
	for _, d := range analysis.Check(pkg, analysis.All()) {
		t.Errorf("%s: skelvet finding in generated source: %s", name, d)
	}

	machines := commgraph.Extract(commgraph.Source{Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info})
	if len(machines) != 1 {
		t.Fatalf("%s: extracted %d communication machines from generated source, want 1", name, len(machines))
	}
	m := &machines[0]
	if len(m.Approx) > 0 {
		t.Fatalf("%s: extraction was approximate: %v", name, m.Approx)
	}
	got := m.StaticSignature()
	if got == nil {
		t.Fatalf("%s: no static signature recovered", name)
	}
	if d := Canon(p).Diff(got); d != "" {
		t.Errorf("%s: static signature from source differs from skeleton program: %s", name, d)
	}
	return got
}

func codegenProgram(t *testing.T) *Program {
	t.Helper()
	sig := traceAndSign(t, 2, 5, iterApp)
	p, err := Build(sig, 10)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCSourceStructure(t *testing.T) {
	p := codegenProgram(t)
	src := CSource(p)
	for _, want := range []string{
		"#include <mpi.h>",
		"MPI_Init",
		"MPI_Finalize",
		"static void skel_rank0(void)",
		"static void skel_rank1(void)",
		"skel_compute(",
		"MPI_Sendrecv(",
		"MPI_Allreduce(",
		"#define SKEL_RANKS 2",
		"for (int i0 = 0; i0 < 10; i0++)",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("C source missing %q", want)
		}
	}
	// Braces must balance.
	if o, c := strings.Count(src, "{"), strings.Count(src, "}"); o != c {
		t.Errorf("unbalanced braces: %d open, %d close", o, c)
	}
}

func TestCSourceBufferCoversLargestMessage(t *testing.T) {
	p := codegenProgram(t)
	src := CSource(p)
	if !strings.Contains(src, "#define SKEL_BUF") {
		t.Fatal("no buffer size define")
	}
	// The iterApp exchanges 50000-byte messages; the buffer must be at
	// least that large. Extract the define.
	var size int64
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(line, "#define SKEL_BUF") {
			fields := strings.Fields(line)
			for i := len(fields[2]) - 1; i >= 0; i-- {
				if fields[2][i] < '0' || fields[2][i] > '9' {
					t.Fatalf("unparseable buffer size %q", fields[2])
				}
			}
			for _, ch := range fields[2] {
				size = size*10 + int64(ch-'0')
			}
		}
	}
	if size < 50000 {
		t.Errorf("buffer size %d smaller than largest message", size)
	}
}

func TestGoSourceStructure(t *testing.T) {
	p := codegenProgram(t)
	src := GoSource(p)
	for _, want := range []string{
		"package main",
		"perfskel.NewTestbed(2",
		"c.Sendrecv(",
		"c.Allreduce(",
		"case 0:",
		"case 1:",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Go source missing %q", want)
		}
	}
	if o, c := strings.Count(src, "{"), strings.Count(src, "}"); o != c {
		t.Errorf("unbalanced braces: %d open, %d close", o, c)
	}
}

func TestCSourceCoversEveryOpKind(t *testing.T) {
	// The handcrafted all-ops program from the executor test must render
	// every operation without "unsupported" placeholders.
	p := &Program{NRanks: 2, K: 1, PerRank: [][]Node{allOpsSeq(0), allOpsSeq(1)}}
	src := CSource(p)
	if strings.Contains(src, "unsupported") {
		t.Error("C source contains unsupported ops")
	}
	for _, want := range []string{
		"MPI_Send(", "MPI_Recv(", "MPI_Isend(", "MPI_Irecv(",
		"skel_wait_kind(", "skel_waitall()", "MPI_Barrier(",
		"MPI_Bcast(", "MPI_Reduce(", "MPI_Allreduce(", "MPI_Alltoall(",
		"MPI_Allgather(", "MPI_Gather(", "MPI_Scatter(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("C source missing %q", want)
		}
	}
	gosrc := GoSource(p)
	if strings.Contains(gosrc, "unsupported") {
		t.Error("Go source contains unsupported ops")
	}
}

func allOpsSeq(rank int) []Node {
	peer := 1 - rank
	return []Node{
		OpNode{Op: Op{Kind: mpi.OpCompute, Work: 0.001}},
		OpNode{Op: Op{Kind: mpi.OpSend, Peer: peer, Tag: 1, Bytes: 100}},
		OpNode{Op: Op{Kind: mpi.OpRecv, Peer: peer, Tag: 1}},
		OpNode{Op: Op{Kind: mpi.OpIsend, Peer: peer, Tag: 2, Bytes: 100}},
		OpNode{Op: Op{Kind: mpi.OpIrecv, Peer: peer, Tag: 2}},
		OpNode{Op: Op{Kind: mpi.OpWait, Sub: mpi.OpIrecv}},
		OpNode{Op: Op{Kind: mpi.OpWait, Sub: mpi.OpIsend}},
		OpNode{Op: Op{Kind: mpi.OpWaitall}},
		OpNode{Op: Op{Kind: mpi.OpSendrecv, Peer: peer, Peer2: peer, Tag: 3, Bytes: 10, Byte2: 10}},
		OpNode{Op: Op{Kind: mpi.OpBarrier}},
		OpNode{Op: Op{Kind: mpi.OpBcast, Peer: 0, Bytes: 8}},
		OpNode{Op: Op{Kind: mpi.OpReduce, Peer: 0, Bytes: 8}},
		OpNode{Op: Op{Kind: mpi.OpAllreduce, Bytes: 8}},
		OpNode{Op: Op{Kind: mpi.OpAlltoall, Bytes: 8}},
		OpNode{Op: Op{Kind: mpi.OpAllgather, Bytes: 8}},
		OpNode{Op: Op{Kind: mpi.OpGather, Peer: 0, Bytes: 8}},
		OpNode{Op: Op{Kind: mpi.OpScatter, Peer: 0, Bytes: 8}},
	}
}

func TestGeneratedSourcesTypecheckAndPassSkelvet(t *testing.T) {
	// A stray verb mismatch would leave "%!" markers in the output; the
	// Go source additionally has to typecheck against the perfskel API
	// and survive the full static-analysis rule set.
	sig := traceAndSign(t, 2, 5, iterApp)
	for _, k := range []int{1, 7, 500} {
		p, err := Build(sig, k)
		if err != nil {
			t.Fatal(err)
		}
		gosrc := GoSource(p)
		for name, src := range map[string]string{"C": CSource(p), "Go": gosrc} {
			if strings.Contains(src, "%!") {
				t.Errorf("K=%d %s source contains formatting errors", k, name)
			}
		}
		static := gateGoSource(t, fmt.Sprintf("iter_k%d", k), gosrc, p)
		// Up-to-K equivalence closes the chain signature -> skeleton ->
		// source -> static signature: the shape recovered from the source
		// text must be a scaled-down version of the dynamic signature.
		if d := signature.ScaledDiff(signature.Canon(sig), static); d != "" {
			t.Errorf("K=%d: static signature is not a scaled version of the dynamic signature: %s", k, d)
		}
	}
}

func TestAllOpsGoSourcePassesSkelvet(t *testing.T) {
	// The handcrafted program exercises every op kind, including the
	// nonblocking send/recv plus wait/waitall pairs the unwaited-request
	// rule tracks through the generated helper functions.
	p := &Program{NRanks: 2, K: 1, PerRank: [][]Node{allOpsSeq(0), allOpsSeq(1)}}
	gateGoSource(t, "allops", GoSource(p), p)
}

func TestCodegenOfRescaledProgram(t *testing.T) {
	app := func(c *mpi.Comm) {
		n, r := c.Size(), c.Rank()
		for i := 0; i < 20; i++ {
			c.Compute(0.01)
			c.Sendrecv((r+1)%n, 5000, (r-1+n)%n, 1)
			c.Allreduce(8)
		}
	}
	sig := traceAndSign(t, 4, 5, app)
	p, err := Build(sig, 4)
	if err != nil {
		t.Fatal(err)
	}
	p8, err := Rescale(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	src := CSource(p8)
	if !strings.Contains(src, "#define SKEL_RANKS 8") {
		t.Error("rescaled C source has wrong rank count")
	}
	if o, c := strings.Count(src, "{"), strings.Count(src, "}"); o != c {
		t.Errorf("unbalanced braces in rescaled source: %d vs %d", o, c)
	}
	for r := 0; r < 8; r++ {
		if !strings.Contains(src, fmt.Sprintf("static void skel_rank%d(void)", r)) {
			t.Errorf("missing rank %d function", r)
		}
	}
	gateGoSource(t, "rescaled8", GoSource(p8), p8)
}
