package skeleton

import (
	"fmt"

	"perfskel/internal/mpi"
)

// Rescale retargets a skeleton built from an n-rank trace to run on m
// ranks, addressing the paper's stated extension of scaling predictions
// across different numbers of processors (section 5). The transformation
// assumes weak scaling (per-rank work and message sizes unchanged) and an
// SPMD program whose ranks differ only in their communication partners:
//
//   - point-to-point peers are interpreted as ring offsets (peer - rank
//     mod n) and re-instantiated as (rank' + offset mod m);
//   - collective roots are kept absolute (mod m);
//   - every rank's program must be identical after offset normalisation,
//     otherwise the program's structure is rank-dependent (e.g. the LU
//     wavefront's grid corners) and Rescale refuses rather than emit a
//     skeleton that could deadlock.
func Rescale(p *Program, m int) (*Program, error) {
	if m < 1 {
		return nil, fmt.Errorf("skeleton: rescale to %d ranks", m)
	}
	if p.NRanks == m {
		return p, nil
	}
	// Normalise every rank's program to offset form and require agreement.
	ref, err := normalizeSeq(p.PerRank[0], 0, p.NRanks)
	if err != nil {
		return nil, err
	}
	for r := 1; r < p.NRanks; r++ {
		nr, err := normalizeSeq(p.PerRank[r], r, p.NRanks)
		if err != nil {
			return nil, err
		}
		if !sameSkeletonSeq(ref, nr) {
			return nil, fmt.Errorf("skeleton: rank %d's program is not a peer-shifted copy of rank 0's; cannot rescale rank-dependent structure", r)
		}
	}
	out := &Program{
		NRanks: m, K: p.K,
		AppTime: p.AppTime, TargetTime: p.TargetTime,
		MinGoodTime: p.MinGoodTime, Good: p.Good,
	}
	for r := 0; r < m; r++ {
		seq, err := instantiateSeq(ref, r, m)
		if err != nil {
			return nil, err
		}
		out.PerRank = append(out.PerRank, seq)
	}
	return out, nil
}

// offsetNone marks an absent peer in normalised form.
const offsetNone = 1 << 30

// normalizeSeq rewrites peers as ring offsets relative to rank.
func normalizeSeq(seq []Node, rank, n int) ([]Node, error) {
	out := make([]Node, 0, len(seq))
	for _, nd := range seq {
		switch x := nd.(type) {
		case OpNode:
			op := x.Op
			np, err := normalizePeer(op.Kind, op.Peer, rank, n, recvSide(op, false))
			if err != nil {
				return nil, err
			}
			op.Peer = np
			if op.Kind == mpi.OpSendrecv {
				np2, err := normalizePeer(op.Kind, op.Peer2, rank, n, true)
				if err != nil {
					return nil, err
				}
				op.Peer2 = np2
			}
			out = append(out, OpNode{Op: op, Dur: x.Dur})
		case LoopNode:
			body, err := normalizeSeq(x.Body, rank, n)
			if err != nil {
				return nil, err
			}
			out = append(out, LoopNode{Count: x.Count, Body: body})
		}
	}
	return out, nil
}

// recvSide reports whether the op's primary peer is a receive source.
func recvSide(op Op, peer2 bool) bool {
	if peer2 {
		return true
	}
	switch op.Kind {
	case mpi.OpRecv, mpi.OpIrecv:
		return true
	case mpi.OpWait:
		return op.Sub == mpi.OpIrecv
	}
	return false
}

func normalizePeer(kind mpi.Op, peer, rank, n int, recv bool) (int, error) {
	switch {
	case peer == mpi.None:
		return offsetNone, nil
	case peer == mpi.AnySource:
		return mpi.AnySource, nil
	case kind.IsCollective():
		return peer, nil // roots stay absolute
	case peer < 0 || peer >= n:
		return 0, fmt.Errorf("skeleton: peer %d out of %d-rank world", peer, n)
	default:
		// Signed ring offset: distances are preserved under rescaling, so
		// offsets above n/2 are interpreted as negative (a left neighbour
		// at n=4 is offset -1, not +3, when moving to n=8). The ambiguous
		// half-ring offset n/2 resolves by direction: a send at +n/2 pairs
		// with a receive at -n/2, keeping the two sides matched at every
		// world size.
		o := (peer - rank + n) % n
		if o > n/2 || (recv && o == n/2) {
			o -= n
		}
		return o, nil
	}
}

// instantiateSeq converts offset form back to absolute peers for rank of
// an m-rank world.
func instantiateSeq(seq []Node, rank, m int) ([]Node, error) {
	out := make([]Node, 0, len(seq))
	for _, nd := range seq {
		switch x := nd.(type) {
		case OpNode:
			op := x.Op
			op.Peer = instantiatePeer(op.Kind, op.Peer, rank, m)
			if op.Kind == mpi.OpSendrecv {
				op.Peer2 = instantiatePeer(op.Kind, op.Peer2, rank, m)
			}
			out = append(out, OpNode{Op: op, Dur: x.Dur})
		case LoopNode:
			body, err := instantiateSeq(x.Body, rank, m)
			if err != nil {
				return nil, err
			}
			out = append(out, LoopNode{Count: x.Count, Body: body})
		}
	}
	return out, nil
}

func instantiatePeer(kind mpi.Op, peer, rank, m int) int {
	switch {
	case peer == offsetNone:
		return mpi.None
	case peer == mpi.AnySource:
		return mpi.AnySource
	case kind.IsCollective():
		return peer % m
	default:
		return ((rank+peer)%m + m) % m
	}
}

// sameSkeletonSeq compares two skeleton sequences: structure (op kinds,
// peers, tags, loop counts) must match exactly; magnitudes (compute work,
// byte counts) only within a small relative tolerance, because per-rank
// cluster centroids of the same phase differ slightly under natural
// jitter. The instantiated program uses rank 0's magnitudes.
func sameSkeletonSeq(a, b []Node) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		switch x := a[i].(type) {
		case OpNode:
			y, ok := b[i].(OpNode)
			if !ok || !approxSameOp(x.Op, y.Op) {
				return false
			}
		case LoopNode:
			y, ok := b[i].(LoopNode)
			if !ok || x.Count != y.Count || !sameSkeletonSeq(x.Body, y.Body) {
				return false
			}
		}
	}
	return true
}

// rescaleTolerance is the relative magnitude slack sameSkeletonSeq allows.
const rescaleTolerance = 0.05

func approxSameOp(a, b Op) bool {
	if a.Kind != b.Kind || a.Sub != b.Sub || a.Peer != b.Peer || a.Peer2 != b.Peer2 || a.Tag != b.Tag {
		return false
	}
	return approx(a.Work, b.Work) && approx(float64(a.Bytes), float64(b.Bytes)) &&
		approx(float64(a.Byte2), float64(b.Byte2))
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if b > m {
		m = b
	}
	return d <= rescaleTolerance*m
}
