// Package stats provides the small numeric helpers the experiment drivers
// share.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the smallest element, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

// Max returns the largest element, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// Median returns the median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Stddev returns the population standard deviation, or 0 for fewer than
// two elements.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
