package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Errorf("mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if Median(xs) != 2.5 {
		t.Errorf("median = %v", Median(xs))
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Errorf("odd median = %v", Median([]float64{5, 1, 3}))
	}
}

func TestEmptySlices(t *testing.T) {
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 || Stddev(nil) != 0 {
		t.Error("empty-slice helpers must return 0")
	}
}

func TestStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Stddev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", got)
	}
}

func TestOrderingProperties(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 0
			}
			// Keep magnitudes summable so the mean cannot overflow.
			xs[i] = math.Mod(x, 1e12)
		}
		if len(xs) == 0 {
			return true
		}
		lo, hi, m := Min(xs), Max(xs), Mean(xs)
		return lo <= hi && lo <= m+1e-9 && m <= hi+1e-9 && lo <= Median(xs) && Median(xs) <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
